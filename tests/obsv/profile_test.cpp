#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "machine/presets.hpp"
#include "obsv/attrib.hpp"
#include "obsv/profile.hpp"
#include "obsv/session.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/world.hpp"

namespace xts::obsv {
namespace {

using machine::ExecMode;

/// Start a profiling-only session, run `program` on an `nranks`-rank
/// world, tear the world down (which folds its profile into the
/// session), and return the single resulting profile.  The caller must
/// call Session::stop().
WorldProfileResult run_profiled(int nranks, ExecMode mode,
                                const vmpi::World::RankProgram& program) {
  Options opt;
  opt.profiling = true;
  Session& session = Session::start(opt);
  {
    vmpi::WorldConfig cfg;
    cfg.machine = machine::xt4();
    cfg.nranks = nranks;
    cfg.mode = mode;
    vmpi::World w(std::move(cfg));
    w.run(program);
  }
  EXPECT_EQ(session.profiles().size(), 1u);
  return session.profiles().back();
}

double bucket(const BucketArray& a, Bucket b) {
  return a[static_cast<std::size_t>(b)];
}

double bucket_sum(const BucketArray& a) {
  double s = 0.0;
  for (const double x : a) s += x;
  return s;
}

const MatrixEntry* find_pair(const WorldProfileResult& p, int src,
                             int dst) {
  for (const MatrixEntry& m : p.matrix)
    if (m.src == src && m.dst == dst) return &m;
  return nullptr;
}

TEST(Profile, OffByDefaultAndNoSpansLeakIntoSink) {
  Options opt;
  opt.profiling = true;  // tracing stays off
  Session& session = Session::start(opt);
  {
    vmpi::WorldConfig cfg;
    cfg.machine = machine::xt4();
    cfg.nranks = 2;
    vmpi::World w(std::move(cfg));
    ASSERT_NE(w.obs(), nullptr);
    EXPECT_TRUE(w.obs()->profiling());
    EXPECT_TRUE(w.obs()->spans_enabled());
    EXPECT_FALSE(w.obs()->tracing());
    w.run([](vmpi::Comm& c) -> Task<void> {
      if (c.rank() == 0) co_await c.send_wait(1, 7, 64.0);
      if (c.rank() == 1) (void)co_await c.recv(0, 7);
    });
  }
  // Profiling must not fill the trace ring.
  EXPECT_EQ(session.sink().size(), 0u);
  EXPECT_EQ(session.profiles().size(), 1u);
  Session::stop();
}

/// The tentpole's matrix-exactness criterion: a ring pattern on N
/// ranks, k messages of B bytes per edge, must produce exactly the
/// N-edge matrix with exact byte and message counts.
TEST(CommMatrix, RingExact) {
  static constexpr int kN = 5;
  static constexpr int kMsgs = 3;
  static constexpr double kBytes = 4096.0;
  const WorldProfileResult p =
      run_profiled(kN, ExecMode::kSN, [](vmpi::Comm& c) -> Task<void> {
        const int next = (c.rank() + 1) % c.size();
        const int prev = (c.rank() + c.size() - 1) % c.size();
        for (int i = 0; i < kMsgs; ++i) {
          co_await c.send_wait(next, 7, kBytes);
          (void)co_await c.recv(prev, 7);
        }
      });
  Session::stop();

  ASSERT_EQ(p.matrix.size(), static_cast<std::size_t>(kN));
  for (int r = 0; r < kN; ++r) {
    const MatrixEntry* m = find_pair(p, r, (r + 1) % kN);
    ASSERT_NE(m, nullptr) << "missing ring edge from rank " << r;
    EXPECT_EQ(m->messages, static_cast<std::uint64_t>(kMsgs));
    EXPECT_DOUBLE_EQ(m->bytes, kMsgs * kBytes);
    EXPECT_GT(m->latency_sum, 0.0);
  }
  EXPECT_EQ(p.messages, static_cast<std::uint64_t>(kN * kMsgs));
  EXPECT_DOUBLE_EQ(p.bytes, kN * kMsgs * kBytes);
}

/// Pairwise-exchange alltoall: every ordered pair carries exactly one
/// message of exactly B bytes.
TEST(CommMatrix, AlltoallExact) {
  static constexpr int kN = 4;
  static constexpr double kBytes = 1024.0;
  const WorldProfileResult p =
      run_profiled(kN, ExecMode::kSN, [](vmpi::Comm& c) -> Task<void> {
        std::vector<double> to(static_cast<std::size_t>(c.size()), kBytes);
        to[static_cast<std::size_t>(c.rank())] = 0.0;
        co_await c.alltoallv_bytes(std::move(to));
      });
  Session::stop();

  ASSERT_EQ(p.matrix.size(), static_cast<std::size_t>(kN * (kN - 1)));
  for (int s = 0; s < kN; ++s) {
    for (int d = 0; d < kN; ++d) {
      if (s == d) continue;
      const MatrixEntry* m = find_pair(p, s, d);
      ASSERT_NE(m, nullptr) << "missing pair " << s << "->" << d;
      EXPECT_EQ(m->messages, 1u) << s << "->" << d;
      EXPECT_DOUBLE_EQ(m->bytes, kBytes) << s << "->" << d;
    }
  }
}

/// Hand-built 3-rank pipeline with an analytically known critical
/// path: rank 0 computes then sends to rank 1, which computes and
/// sends to rank 2, which computes last.  The dependency chain covers
/// the whole run, so the critical path must walk 0 -> 1 -> 2 through
/// both messages and its length must equal the wall window.
TEST(CritPath, ThreeRankPipeline) {
  const machine::Work slab{1e8, 1.0, 0.0, 0.0};  // ~ms-scale compute
  const WorldProfileResult p = run_profiled(
      3, ExecMode::kSN, [slab](vmpi::Comm& c) -> Task<void> {
        constexpr double kBytes = 32768.0;
        switch (c.rank()) {
          case 0:
            co_await c.compute(slab);
            co_await c.send_wait(1, 5, kBytes);
            break;
          case 1:
            (void)co_await c.recv(0, 5);
            co_await c.compute(slab);
            co_await c.send_wait(2, 5, kBytes);
            break;
          default:
            (void)co_await c.recv(1, 5);
            co_await c.compute(slab);
        }
      });
  Session::stop();

  const CritPath& cp = p.critical_path;
  EXPECT_FALSE(cp.truncated);
  EXPECT_EQ(cp.messages, 2u);
  ASSERT_EQ(cp.ranks.size(), 3u);
  EXPECT_EQ(cp.ranks[0], 0);
  EXPECT_EQ(cp.ranks[1], 1);
  EXPECT_EQ(cp.ranks[2], 2);

  // The chain tiles the whole run and never exceeds it.
  EXPECT_NEAR(cp.length, p.wall(), 1e-9);
  EXPECT_NEAR(bucket_sum(cp.buckets), cp.length, 1e-9);
  // All three compute slabs lie on the path and dominate it.
  EXPECT_GT(bucket(cp.buckets, Bucket::kCompute), 0.5 * cp.length);
  // Two inter-node messages cross injection and ejection links.
  EXPECT_FALSE(cp.links.empty());
  std::uint64_t inj = 0;
  for (const CritLink& l : cp.links)
    if (l.cls == 6) inj += l.count;
  EXPECT_EQ(inj, 2u);

  // Steps are contiguous backward-to-forward.
  ASSERT_FALSE(cp.steps.empty());
  for (std::size_t i = 1; i < cp.steps.size(); ++i)
    EXPECT_NEAR(cp.steps[i].t0, cp.steps[i - 1].t1, 1e-9);
}

/// Acceptance criterion: every rank's exclusive buckets tile the wall
/// window to 1e-9 s, on a workload mixing phases, collectives, compute,
/// and p2p in VN mode.
TEST(Profile, BucketsTileWallTime) {
  const machine::Work slab{2e7, 0.5, 1e6, 0.0};
  const WorldProfileResult p = run_profiled(
      6, ExecMode::kVN, [slab](vmpi::Comm& c) -> Task<void> {
        {
          auto ph = c.phase("test.exchange");
          const int next = (c.rank() + 1) % c.size();
          const int prev = (c.rank() + c.size() - 1) % c.size();
          co_await c.send_wait(next, 3, 1e5);
          (void)co_await c.recv(prev, 3);
        }
        {
          auto ph = c.phase("test.solve");
          co_await c.compute(slab.scaled(1.0 + c.rank()));
          co_await c.barrier();
        }
        std::vector<double> contrib(2, 1.0);
        (void)co_await c.allreduce_sum(std::move(contrib));
      });
  Session::stop();

  ASSERT_EQ(p.ranks.size(), 6u);
  ASSERT_GT(p.wall(), 0.0);
  for (std::size_t r = 0; r < p.ranks.size(); ++r) {
    EXPECT_NEAR(bucket_sum(p.ranks[r].buckets), p.wall(), 1e-9)
        << "rank " << r;
  }
  // Phase totals partition total rank time across all phase keys.
  double phase_total = 0.0;
  for (const PhaseProfile& ph : p.phases) phase_total += bucket_sum(ph.total);
  EXPECT_NEAR(phase_total, p.wall() * 6.0, 6e-9);
  EXPECT_LE(p.critical_path.length, p.wall() + 1e-9);
  // Skewed compute (rank 5 does 6x rank 0's work): rank 5 is the
  // compute-imbalance argmax and the others accumulate wait time.
  EXPECT_EQ(p.bucket_imbalance[static_cast<std::size_t>(Bucket::kCompute)]
                .argmax,
            5);
  EXPECT_GT(bucket(p.ranks[0].buckets, Bucket::kCollective) +
                bucket(p.ranks[0].buckets, Bucket::kBlocked) +
                bucket(p.ranks[0].buckets, Bucket::kIdle),
            0.0);
}

TEST(Attrib, VerdictsFromSyntheticBuckets) {
  auto mk = [](Bucket b, double v) {
    BucketArray a{};
    a[static_cast<std::size_t>(b)] = v;
    return a;
  };
  EXPECT_EQ(attribute(mk(Bucket::kCompute, 1.0), 0.0).verdict,
            Verdict::kCompute);
  EXPECT_EQ(attribute(mk(Bucket::kTxWait, 1.0), 0.0).verdict,
            Verdict::kInjection);
  EXPECT_EQ(attribute(mk(Bucket::kBlocked, 1.0), 0.0).verdict,
            Verdict::kWait);
  EXPECT_EQ(attribute(mk(Bucket::kIdle, 1.0), 0.0).verdict, Verdict::kWait);
  // Exposed flow time splits by the contended ratio.
  const Attribution low = attribute(mk(Bucket::kFlow, 1.0), 0.1);
  EXPECT_EQ(low.verdict, Verdict::kInjection);
  const Attribution high = attribute(mk(Bucket::kFlow, 1.0), 0.9);
  EXPECT_EQ(high.verdict, Verdict::kContention);
  EXPECT_NEAR(high.contention_score, 0.9, 1e-12);

  // I/O verdicts: the dominant io bucket picks the subclass.
  EXPECT_EQ(attribute(mk(Bucket::kIoMds, 1.0), 0.0).verdict,
            Verdict::kIoMeta);
  EXPECT_EQ(attribute(mk(Bucket::kIoQueue, 1.0), 0.0).verdict,
            Verdict::kIoStripe);
  EXPECT_EQ(attribute(mk(Bucket::kIoXfer, 1.0), 0.0).verdict,
            Verdict::kIo);
  const Attribution io = attribute(mk(Bucket::kIoXfer, 1.0), 0.0);
  EXPECT_NEAR(io.io_score, 1.0, 1e-12);

  // Scores always sum to 1 for nonzero time.
  BucketArray mixed{};
  for (int b = 0; b < kBuckets; ++b)
    mixed[static_cast<std::size_t>(b)] = 1.0 + b;
  const Attribution a = attribute(mixed, 0.3);
  EXPECT_NEAR(a.compute_score + a.injection_score + a.contention_score +
                  a.wait_score + a.io_score,
              1.0, 1e-12);

  // Zero time: all scores zero, defaulting to compute.
  const Attribution zero = attribute(BucketArray{}, 0.5);
  EXPECT_EQ(zero.verdict, Verdict::kCompute);
  EXPECT_EQ(zero.compute_score, 0.0);
}

TEST(Attrib, ContentionWeightFromSummary) {
  WorldSummary s;
  // Torus link: 2s busy, 1s contended; ejection link ignored.
  s.links.push_back({0, 0, 1e6, 2.0, 1.0, 3});
  s.links.push_back({9, 7, 1e9, 5.0, 5.0, 9});
  EXPECT_NEAR(contention_weight(s), 0.5, 1e-12);
  WorldSummary empty;
  EXPECT_EQ(contention_weight(empty), 0.0);
}

/// The JSON report round-trips through the text writers without a
/// session mismatch (full schema validation lives in check_trace.py).
TEST(Attrib, WriteProfileEmitsMarkerAndVerdict) {
  (void)run_profiled(2, ExecMode::kSN, [](vmpi::Comm& c) -> Task<void> {
    if (c.rank() == 0) co_await c.send_wait(1, 1, 256.0);
    if (c.rank() == 1) (void)co_await c.recv(0, 1);
  });
  Session* session = Session::active();
  ASSERT_NE(session, nullptr);
  std::ostringstream os;
  write_profile(os, *session);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"xtsim_profile\":1"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\""), std::string::npos);
  const std::string table = profile_table(*session);
  EXPECT_NE(table.find("verdict:"), std::string::npos);
  Session::stop();
}

}  // namespace
}  // namespace xts::obsv
