#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/hostprof.hpp"
#include "machine/presets.hpp"
#include "obsv/telemetry.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/world.hpp"

namespace xts::obsv {
namespace {

void spin_for(std::chrono::milliseconds d) {
  const auto end = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < end) {
  }
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

class HostProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HostProfile::reset();
    HostProfile::enable(true);
  }
  void TearDown() override {
    HostProfile::enable(false);
    HostProfile::reset();
  }
};

TEST(HostProfileDisabled, ScopedTimerIsNoop) {
  ASSERT_FALSE(HostProfile::enabled());
  HostProfile::reset();
  {
    const ScopedHostTimer t(HostSubsys::kEngine);
    spin_for(std::chrono::milliseconds(2));
  }
  const HostProfile::Totals totals = HostProfile::fold();
  EXPECT_DOUBLE_EQ(totals[HostSubsys::kEngine], 0.0);
}

TEST_F(HostProfileTest, ScopedTimerAccumulates) {
  {
    const ScopedHostTimer t(HostSubsys::kRates);
    spin_for(std::chrono::milliseconds(5));
  }
  const HostProfile::Totals totals = HostProfile::fold();
  // Generous bounds: clocks are real, the box may be busy.
  EXPECT_GE(totals[HostSubsys::kRates], 0.004);
  EXPECT_LT(totals[HostSubsys::kRates], 1.0);
  EXPECT_DOUBLE_EQ(totals[HostSubsys::kEngine], 0.0);
}

TEST_F(HostProfileTest, NestedScopeAttributionIsExclusive) {
  {
    const ScopedHostTimer outer(HostSubsys::kEngine);
    spin_for(std::chrono::milliseconds(4));
    {
      const ScopedHostTimer inner(HostSubsys::kRates);
      spin_for(std::chrono::milliseconds(4));
    }
    spin_for(std::chrono::milliseconds(4));
  }
  const HostProfile::Totals totals = HostProfile::fold();
  // Exclusive attribution: the inner window is charged to kRates only,
  // so kEngine holds ~8 ms, not ~12 ms.
  EXPECT_GE(totals[HostSubsys::kEngine], 0.006);
  EXPECT_GE(totals[HostSubsys::kRates], 0.003);
  const double sum =
      totals[HostSubsys::kEngine] + totals[HostSubsys::kRates];
  EXPECT_GE(sum, 0.010);
  EXPECT_LT(sum, 2.0);
  // No double counting: engine alone stays clearly under the total.
  EXPECT_LT(totals[HostSubsys::kEngine], sum);
}

TEST_F(HostProfileTest, FoldSumsAcrossThreads) {
  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([] {
      const ScopedHostTimer t(HostSubsys::kPoolWork);
      spin_for(std::chrono::milliseconds(3));
    });
  }
  for (std::thread& w : workers) w.join();
  const HostProfile::Totals totals = HostProfile::fold();
  // Each thread contributed >= ~3 ms into its own shard.
  EXPECT_GE(totals[HostSubsys::kPoolWork], kThreads * 0.002);
  // fold_each exposes at least that many distinct shards with work.
  std::size_t busy = 0;
  for (const HostProfile::Totals& sh : HostProfile::fold_each())
    if (sh[HostSubsys::kPoolWork] > 0.0) ++busy;
  EXPECT_GE(busy, static_cast<std::size_t>(kThreads));
}

TEST_F(HostProfileTest, ResetZeroesEveryShard) {
  {
    const ScopedHostTimer t(HostSubsys::kExport);
    spin_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(HostProfile::fold()[HostSubsys::kExport], 0.0);
  HostProfile::reset();
  const HostProfile::Totals totals = HostProfile::fold();
  for (std::size_t i = 0; i < kHostSubsysCount; ++i)
    EXPECT_DOUBLE_EQ(totals.seconds[i], 0.0);
}

TEST(HostSubsysNames, AllDistinctAndNonEmpty) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kHostSubsysCount; ++i)
    names.emplace_back(host_subsys_name(static_cast<HostSubsys>(i)));
  for (const std::string& n : names) EXPECT_FALSE(n.empty());
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
}

TEST(HostGauges, RusageAndRssArePlausible) {
  // No current <= peak assertion: ru_maxrss and /proc/self/statm use
  // slightly different page accounting, so they can disagree by a few
  // pages in either direction.
  EXPECT_GT(host_peak_rss_bytes(), 0L);
  EXPECT_GT(host_current_rss_bytes(), 0L);
  const HostFaults faults = host_page_faults();
  EXPECT_GE(faults.major, 0L);
  EXPECT_GE(faults.minor, 0L);
}

/// End-to-end: arm telemetry with a stream file, run a real World so
/// the Engine/FlowNetwork publish progress, stop, and validate the
/// JSONL schema.  Substring checks only — the writer emits compact
/// JSON with no spaces.
TEST(TelemetryE2E, StreamSchemaAndProgressPublishing) {
  ASSERT_FALSE(telemetry::active());
  EXPECT_EQ(telemetry::progress(), nullptr);

  const std::string path =
      ::testing::TempDir() + "xtsim_telemetry_test.jsonl";
  TelemetryOptions opt;
  opt.stream_path = path;
  telemetry::start(opt);
  ASSERT_TRUE(telemetry::active());
  RunProgress* progress = telemetry::progress();
  ASSERT_NE(progress, nullptr);

  {
    vmpi::WorldConfig cfg;
    cfg.machine = machine::xt4();
    cfg.nranks = 8;
    vmpi::World w(std::move(cfg));
    w.run([](vmpi::Comm& c) -> Task<void> {
      co_await c.send_wait((c.rank() + 1) % c.size(), 0, 4096.0);
      (void)co_await c.recv(vmpi::kAnySource, 0);
      co_await c.barrier();
    });
  }
  // The World wired the progress atomics and published at teardown.
  EXPECT_GT(progress->events.load(std::memory_order_relaxed), 0u);
  EXPECT_GT(progress->sim_time.load(std::memory_order_relaxed), 0.0);

  // On-demand snapshot while armed: one heartbeat JSON line.
  std::ostringstream snap;
  telemetry::snapshot(snap);
  EXPECT_TRUE(contains(snap.str(), "\"kind\":\"heartbeat\""));
  EXPECT_TRUE(contains(snap.str(), "\"events\":"));

  std::ostringstream bd;
  telemetry::write_breakdown(bd);
  EXPECT_TRUE(contains(bd.str(), "\"kind\":\"breakdown\""));

  telemetry::stop();
  EXPECT_FALSE(telemetry::active());
  EXPECT_EQ(telemetry::progress(), nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string stream = buf.str();
  std::remove(path.c_str());

  // Start marker first, then >= 1 heartbeat (the final one is
  // guaranteed even for sub-period runs), then exactly one breakdown.
  EXPECT_EQ(stream.rfind("{\"xtsim_telemetry\":1", 0), 0u);
  EXPECT_TRUE(contains(stream, "\"kind\":\"start\""));
  EXPECT_TRUE(contains(stream, "\"schema\":1"));
  EXPECT_GE(count_of(stream, "\"kind\":\"heartbeat\""), 1u);
  EXPECT_TRUE(contains(stream, "\"final\":true"));
  for (const char* key :
       {"\"wall_s\":", "\"sim_s\":", "\"events\":", "\"events_per_s\":",
        "\"sim_rate\":", "\"queue_depth\":", "\"flows\":",
        "\"pool_util\":", "\"rss_bytes\":"})
    EXPECT_TRUE(contains(stream, key)) << key;
  EXPECT_EQ(count_of(stream, "\"kind\":\"breakdown\""), 1u);
  for (const char* key :
       {"\"engine\"", "\"net.rates\"", "\"obsv.export\"", "\"telemetry\"",
        "\"other\"", "\"pool\"", "\"work_s\"", "\"idle_s\"",
        "\"peak_rss_bytes\"", "\"major_faults\"", "\"minor_faults\""})
    EXPECT_TRUE(contains(stream, key)) << key;

  // Disarmed again: snapshot/write_breakdown are no-ops.
  std::ostringstream after;
  telemetry::snapshot(after);
  telemetry::write_breakdown(after);
  EXPECT_TRUE(after.str().empty());
}

TEST(TelemetryE2E, StopWithoutStartIsSafe) {
  ASSERT_FALSE(telemetry::active());
  telemetry::stop();  // must not crash or emit
  EXPECT_FALSE(telemetry::active());
}

}  // namespace
}  // namespace xts::obsv
