#include "core/task.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/future.hpp"

namespace xts {
namespace {

Task<int> answer() { co_return 42; }

Task<int> add(int a, int b) {
  int x = co_await answer();
  co_return a + b + x - 42;
}

TEST(Task, SpawnedRootRuns) {
  Engine e;
  bool ran = false;
  spawn(e, [](bool& flag) -> Task<void> {
    flag = true;
    co_return;
  }(ran));
  EXPECT_FALSE(ran) << "tasks are lazy until the engine runs";
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Task, NestedAwaitsPropagateValues) {
  Engine e;
  int result = 0;
  spawn(e, [](Engine&, int& out) -> Task<void> {
    out = co_await add(1, 2);
  }(e, result));
  e.run();
  EXPECT_EQ(result, 3);
}

TEST(Task, DelayAdvancesSimulatedTime) {
  Engine e;
  SimTime observed = -1.0;
  spawn(e, [](Engine& eng, SimTime& out) -> Task<void> {
    co_await Delay(eng, 2.5);
    co_await Delay(eng, 1.5);
    out = eng.now();
  }(e, observed));
  e.run();
  EXPECT_DOUBLE_EQ(observed, 4.0);
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  Engine e;
  bool caught = false;
  auto thrower = []() -> Task<int> {
    throw UsageError("boom");
    co_return 0;  // unreachable
  };
  spawn(e, [](auto fn, bool& flag) -> Task<void> {
    try {
      (void)co_await fn();
    } catch (const UsageError&) {
      flag = true;
    }
  }(thrower, caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    spawn(e, [](Engine& eng, std::vector<int>& log, int id) -> Task<void> {
      co_await Delay(eng, 1.0 + id % 3);
      log.push_back(id);
    }(e, order, i));
  }
  e.run();
  ASSERT_EQ(order.size(), 50u);
  // Delay groups by (id % 3); within a group, spawn order is preserved.
  std::vector<int> expected;
  for (int r = 0; r < 3; ++r)
    for (int i = 0; i < 50; ++i)
      if (i % 3 == r) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Task, DeepChainDoesNotOverflowStack) {
  Engine e;
  // 100k-deep sequential awaits; symmetric transfer keeps native stack flat.
  struct Chain {
    static Task<int> run(int depth) {
      if (depth == 0) co_return 0;
      int below = co_await run(depth - 1);
      co_return below + 1;
    }
  };
  int result = 0;
  spawn(e, [](int& out) -> Task<void> {
    out = co_await Chain::run(100000);
  }(result));
  e.run();
  EXPECT_EQ(result, 100000);
}

TEST(SimFuture, ValueSetBeforeAwaitIsImmediate) {
  Engine e;
  SimPromise<int> p(e);
  p.set_value(7);
  int got = 0;
  spawn(e, [](SimFuture<int> f, int& out) -> Task<void> {
    out = co_await std::move(f);
  }(p.future(), got));
  e.run();
  EXPECT_EQ(got, 7);
}

TEST(SimFuture, ValueSetAfterAwaitResumesWaiter) {
  Engine e;
  SimPromise<std::string> p(e);
  std::string got;
  spawn(e, [](SimFuture<std::string> f, std::string& out) -> Task<void> {
    out = co_await std::move(f);
  }(p.future(), got));
  e.schedule_at(3.0, [p] { p.set_value("hello"); });
  e.run();
  EXPECT_EQ(got, "hello");
}

TEST(SimFuture, DoubleSetThrows) {
  Engine e;
  SimPromise<int> p(e);
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), UsageError);
}

TEST(SimFuture, AwaitingCompletedFutureAfterDelayGivesMaxSemantics) {
  // The pattern used for compute/memory overlap: start a server job,
  // sleep for the compute time, then await the job — total time is the
  // max of the two.
  Engine e;
  SimPromise<Done> p(e);
  SimTime finished = -1.0;
  spawn(e, [](Engine& eng, SimFuture<Done> f, SimTime& out) -> Task<void> {
    co_await Delay(eng, 5.0);  // compute
    (void)co_await std::move(f);  // memory flow completed at t=2
    out = eng.now();
  }(e, p.future(), finished));
  e.schedule_at(2.0, [p] { p.set_value(Done{}); });
  e.run();
  EXPECT_DOUBLE_EQ(finished, 5.0);
}

}  // namespace
}  // namespace xts
