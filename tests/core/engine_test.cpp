#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

namespace xts {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) e.schedule_after(1.0, chain);
  };
  e.schedule_after(1.0, chain);
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(e.now(), 10.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(5.0, [&] {
    EXPECT_THROW(e.schedule_at(1.0, [] {}), UsageError);
  });
  e.run();
}

TEST(Engine, NegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), UsageError);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  EXPECT_FALSE(e.run_until(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_pending(), 1u);
  EXPECT_TRUE(e.run_until(20.0));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunUntilAdvancesNowToDeadline) {
  // Regression: run_until used to leave now() at the last fired event,
  // so a follow-up schedule_after() landed before the deadline.
  Engine e;
  e.schedule_at(1.0, [] {});
  e.schedule_at(10.0, [] {});
  EXPECT_FALSE(e.run_until(5.0));
  EXPECT_EQ(e.now(), 5.0);
  int fired_at_deadline_plus = 0;
  e.schedule_after(1.0, [&] { ++fired_at_deadline_plus; });  // at t=6
  EXPECT_FALSE(e.run_until(7.0));
  EXPECT_EQ(fired_at_deadline_plus, 1);
  EXPECT_EQ(e.now(), 7.0);
  EXPECT_TRUE(e.run_until(20.0));
  EXPECT_EQ(e.now(), 20.0);  // drained: still advances to the deadline
}

TEST(Engine, RunUntilPastDeadlineDoesNotRewindTime) {
  Engine e;
  e.schedule_at(3.0, [] {});
  e.run();
  EXPECT_EQ(e.now(), 3.0);
  EXPECT_TRUE(e.run_until(1.0));  // deadline already in the past
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SameInstantFifoAndHeapInterleaveBySequence) {
  // Events landing at the same instant fire in schedule order even when
  // some were scheduled earlier (heap) and some at that instant (FIFO).
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(0);
    // Scheduled *at* t=1 while now()==1: takes the same-instant lane.
    e.schedule_after(0.0, [&] { order.push_back(2); });
    e.schedule_at(1.0, [&] { order.push_back(3); });
  });
  e.schedule_at(1.0, [&] { order.push_back(1); });  // heap, seq 1
  e.schedule_at(2.0, [&] { order.push_back(4); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ZeroDelayStormPreservesFifoOrder) {
  // Grow the same-instant ring through several reallocations.
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    for (int i = 0; i < 500; ++i)
      e.schedule_after(0.0, [&order, i] { order.push_back(2 * i); });
  });
  e.schedule_at(1.0, [&] {
    for (int i = 0; i < 500; ++i)
      e.schedule_after(0.0, [&order, i] { order.push_back(2 * i + 1); });
  });
  e.run();
  // Both batches were enqueued before any ring entry fired, so the ring
  // drains the first batch (even values), then the second (odd values).
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], 2 * i);
    EXPECT_EQ(order[static_cast<size_t>(500 + i)], 2 * i + 1);
  }
  EXPECT_EQ(e.now(), 1.0);
}

TEST(Engine, LargeAndNonTrivialCapturesAreBoxedCorrectly) {
  // Callables that exceed the inline buffer (or are not trivially
  // copyable) take the heap-boxed path of InlineFn.
  Engine e;
  auto big = std::make_shared<std::vector<int>>(100, 7);
  long sum = 0;
  double pad[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  e.schedule_at(1.0, [big, &sum] { sum += (*big)[99]; });   // non-trivial
  e.schedule_at(2.0, [pad, &sum] { sum += static_cast<long>(pad[7]); });
  e.run();
  EXPECT_EQ(sum, 15);
  EXPECT_EQ(big.use_count(), 1);  // boxed copy destroyed after firing
}

TEST(Engine, EventCountersTrack) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(static_cast<double>(i), [] {});
  EXPECT_EQ(e.events_pending(), 5u);
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
  EXPECT_EQ(e.events_pending(), 0u);
}

}  // namespace
}  // namespace xts
