#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xts {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) e.schedule_after(1.0, chain);
  };
  e.schedule_after(1.0, chain);
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(e.now(), 10.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(5.0, [&] {
    EXPECT_THROW(e.schedule_at(1.0, [] {}), UsageError);
  });
  e.run();
}

TEST(Engine, NegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), UsageError);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  EXPECT_FALSE(e.run_until(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_pending(), 1u);
  EXPECT_TRUE(e.run_until(20.0));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventCountersTrack) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(static_cast<double>(i), [] {});
  EXPECT_EQ(e.events_pending(), 5u);
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
  EXPECT_EQ(e.events_pending(), 0u);
}

}  // namespace
}  // namespace xts
