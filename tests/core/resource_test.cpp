#include "core/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/task.hpp"

namespace xts {
namespace {

TEST(SharedServer, SingleJobRunsAtFullCapacity) {
  Engine e;
  SharedServer server(e, 10.0);  // 10 units/s
  SimTime done = -1.0;
  spawn(e, [](Engine& eng, SharedServer& s, SimTime& out) -> Task<void> {
    (void)co_await s.consume(50.0);
    out = eng.now();
  }(e, server, done));
  e.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
  EXPECT_DOUBLE_EQ(server.total_served(), 50.0);
}

TEST(SharedServer, TwoEqualJobsEachGetHalf) {
  Engine e;
  SharedServer server(e, 10.0);
  std::vector<SimTime> done(2, -1.0);
  for (int i = 0; i < 2; ++i) {
    spawn(e, [](Engine& eng, SharedServer& s, SimTime& out) -> Task<void> {
      (void)co_await s.consume(50.0);
      out = eng.now();
    }(e, server, done[static_cast<size_t>(i)]));
  }
  e.run();
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
}

TEST(SharedServer, LateArrivalSlowsFirstJob) {
  Engine e;
  SharedServer server(e, 10.0);
  SimTime first = -1.0, second = -1.0;
  spawn(e, [](Engine& eng, SharedServer& s, SimTime& out) -> Task<void> {
    (void)co_await s.consume(100.0);
    out = eng.now();
  }(e, server, first));
  spawn(e, [](Engine& eng, SharedServer& s, SimTime& out) -> Task<void> {
    co_await Delay(eng, 5.0);
    (void)co_await s.consume(25.0);
    out = eng.now();
  }(e, server, second));
  e.run();
  // First job: 50 units in [0,5] at rate 10, shares [5,10] at rate 5
  // (25 units), finishing the last 25 alone: 10 + 2.5 = 12.5 s.
  // Second job: 25 units at rate 5 -> done at t=10.
  EXPECT_DOUBLE_EQ(second, 10.0);
  EXPECT_DOUBLE_EQ(first, 12.5);
}

TEST(SharedServer, ZeroAmountCompletesImmediately) {
  Engine e;
  SharedServer server(e, 1.0);
  SimTime done = -1.0;
  spawn(e, [](Engine& eng, SharedServer& s, SimTime& out) -> Task<void> {
    (void)co_await s.consume(0.0);
    out = eng.now();
  }(e, server, done));
  e.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(SharedServer, RejectsInvalidArguments) {
  Engine e;
  EXPECT_THROW(SharedServer(e, 0.0), UsageError);
  EXPECT_THROW(SharedServer(e, -5.0), UsageError);
  SharedServer server(e, 1.0);
  EXPECT_THROW((void)server.consume(-1.0), UsageError);
}

TEST(SharedServer, ConservationAcrossManyJobs) {
  Engine e;
  SharedServer server(e, 7.0);
  double total = 0.0;
  for (int i = 1; i <= 20; ++i) {
    const double amount = static_cast<double>(i) * 3.0;
    total += amount;
    spawn(e, [](Engine& eng, SharedServer& s, double amt, int delay)
                 -> Task<void> {
      co_await Delay(eng, static_cast<double>(delay));
      (void)co_await s.consume(amt);
    }(e, server, amount, i % 5));
  }
  e.run();
  EXPECT_NEAR(server.total_served(), total, 1e-6);
  EXPECT_EQ(server.active_jobs(), 0u);
}

// Parameterized fairness property: N identical jobs all finish at
// N * amount / capacity, regardless of N.
class SharedServerFairness : public ::testing::TestWithParam<int> {};

TEST_P(SharedServerFairness, EqualJobsFinishTogetherAtScaledTime) {
  const int n = GetParam();
  Engine e;
  SharedServer server(e, 4.0);
  std::vector<SimTime> done(static_cast<size_t>(n), -1.0);
  for (int i = 0; i < n; ++i) {
    spawn(e, [](Engine& eng, SharedServer& s, SimTime& out) -> Task<void> {
      (void)co_await s.consume(8.0);
      out = eng.now();
    }(e, server, done[static_cast<size_t>(i)]));
  }
  e.run();
  const double expected = static_cast<double>(n) * 8.0 / 4.0;
  for (const auto t : done) EXPECT_NEAR(t, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, SharedServerFairness,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 33));

TEST(SharedServer, NoLivelockAtLargeSimulatedTimes) {
  // Regression: late in a long simulation the clock ulp exceeds a tiny
  // completion threshold; a rounding residue then schedules completion
  // events that cannot advance time.  Two equal jobs finishing
  // simultaneously at t ~ 1e5 s used to spin forever.
  Engine e;
  SharedServer server(e, 3.5e9, "mem", 3.5e9);
  int finished = 0;
  for (int i = 0; i < 2; ++i) {
    spawn(e, [](Engine& eng, SharedServer& s, int& count) -> Task<void> {
      co_await Delay(eng, 72360.476428278285);
      (void)co_await s.consume(7.34e13);
      ++count;
    }(e, server, finished));
  }
  e.run();
  EXPECT_EQ(finished, 2);
  EXPECT_LT(e.events_processed(), 1000u);
}

TEST(FifoResource, GrantsInFifoOrder) {
  Engine e;
  FifoResource res(e);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    spawn(e, [](Engine& eng, FifoResource& r, std::vector<int>& log,
                int id) -> Task<void> {
      (void)co_await r.acquire();
      log.push_back(id);
      co_await Delay(eng, 1.0);
      r.release();
    }(e, res, order, i));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(res.busy());
}

TEST(FifoResource, ReleaseWithoutHoldThrows) {
  Engine e;
  FifoResource res(e);
  EXPECT_THROW(res.release(), UsageError);
}

TEST(FifoResource, SerializesCriticalSections) {
  Engine e;
  FifoResource res(e);
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 10; ++i) {
    spawn(e, [](Engine& eng, FifoResource& r, int& in, int& mx) -> Task<void> {
      (void)co_await r.acquire();
      ++in;
      mx = std::max(mx, in);
      co_await Delay(eng, 0.5);
      --in;
      r.release();
    }(e, res, inside, max_inside));
  }
  e.run();
  EXPECT_EQ(max_inside, 1);
}

}  // namespace
}  // namespace xts
