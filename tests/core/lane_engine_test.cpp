#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/error.hpp"

namespace xts {
namespace {

// Event log entry: (sim time, event id).  Serial and lane engines must
// produce bitwise-equal logs for the same scripted workload.
using Log = std::vector<std::pair<SimTime, int>>;

// Deterministic xorshift so the workload is identical across engines.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

// A self-expanding workload: every event logs itself, then spawns up
// to two children at pseudo-random delays (including zero) into
// pseudo-random lanes, until the budget runs out.  Ids are assigned in
// schedule order, so equal logs mean equal schedule AND execute order.
Log run_workload(Engine& e, int lanes, int budget) {
  Log log;
  Rng rng;
  int next_id = 0;
  const double delays[] = {0.0, 0.1, 0.7, 1.3, 2.9};
  std::function<void(int)> body = [&](int id) {
    log.emplace_back(e.now(), id);
    for (int c = 0; c < 2 && next_id < budget; ++c) {
      const double d = delays[rng.next() % 5];
      // Draw unconditionally so the delay stream is identical whether
      // or not the engine is in lane mode.
      const std::uint64_t lane_draw = rng.next();
      const int lane =
          lanes > 0
              ? static_cast<int>(lane_draw % static_cast<unsigned>(lanes))
              : 0;
      const int child = next_id++;
      const Engine::LaneScope scope(e, lane);
      e.schedule_after(d, [&body, child] { body(child); });
    }
  };
  for (int i = 0; i < 8 && next_id < budget; ++i) {
    const int id = next_id++;
    const Engine::LaneScope scope(e, lanes > 0 ? i % lanes : 0);
    e.schedule_at(0.0, [&body, id] { body(id); });
  }
  e.run();
  return log;
}

TEST(LaneEngine, MatchesSerialBitwise) {
  Engine serial;
  const Log want = run_workload(serial, 0, 400);
  for (const int lanes : {1, 2, 4, 7}) {
    Engine laned;
    laned.enable_lanes(lanes, 0.5);
    const Log got = run_workload(laned, lanes, 400);
    EXPECT_EQ(got, want) << "lanes=" << lanes;
    EXPECT_EQ(laned.now(), serial.now());
    EXPECT_EQ(laned.events_processed(), serial.events_processed());
  }
}

// Zero-delay storm: same-instant events spawning same-instant events
// across lanes must keep exact serial FIFO order (the wfifo path).
TEST(LaneEngine, ZeroDelayStormKeepsScheduleOrder) {
  auto storm = [](Engine& e, int lanes) {
    std::vector<int> order;
    int next_id = 0;
    std::function<void(int, int)> body = [&](int id, int depth) {
      order.push_back(id);
      if (depth >= 3) return;
      for (int c = 0; c < 2; ++c) {
        const int child = next_id++;
        const Engine::LaneScope scope(
            e, lanes > 0 ? child % lanes : 0);
        e.schedule_after(0.0,
                         [&body, child, depth] { body(child, depth + 1); });
      }
    };
    for (int i = 0; i < 4; ++i) {
      const int id = next_id++;
      e.schedule_at(1.0, [&body, id] { body(id, 0); });
    }
    e.run();
    return order;
  };
  Engine serial;
  const std::vector<int> want = storm(serial, 0);
  Engine laned;
  laned.enable_lanes(4, 0.25);
  EXPECT_EQ(storm(laned, 4), want);
}

TEST(LaneEngine, RunUntilStopsAtBoundAndResumes) {
  Engine e;
  e.enable_lanes(3, 1.0);
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 5.0, 9.0}) {
    const Engine::LaneScope scope(e, static_cast<int>(t) % 3);
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  EXPECT_FALSE(e.run_until(4.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(e.now(), 4.0);
  EXPECT_EQ(e.events_pending(), 2u);
  EXPECT_TRUE(e.run_until(10.0));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 5.0, 9.0}));
}

TEST(LaneEngine, StepIsUnavailable) {
  Engine e;
  e.enable_lanes(2, 1.0);
  e.schedule_at(1.0, [] {});
  EXPECT_THROW(e.step(), UsageError);
  e.run();
}

TEST(LaneEngine, EnableValidatesArguments) {
  Engine e;
  EXPECT_THROW(e.enable_lanes(0, 1.0), UsageError);
  EXPECT_THROW(e.enable_lanes(2, -1.0), UsageError);
  EXPECT_THROW(
      e.enable_lanes(2, std::numeric_limits<double>::infinity()),
      UsageError);
  e.schedule_at(1.0, [] {});
  EXPECT_THROW(e.enable_lanes(2, 1.0), UsageError);  // non-empty queue
  e.run();
  e.enable_lanes(2, 1.0);
  EXPECT_THROW(e.enable_lanes(2, 1.0), UsageError);  // already enabled
  EXPECT_TRUE(e.lanes_enabled());
  EXPECT_EQ(e.lane_count(), 2);
  EXPECT_DOUBLE_EQ(e.lane_lookahead(), 1.0);
}

// A handler throwing mid-window must not lose the un-executed tail:
// the engine requeues it and a later run() executes it in order.
TEST(LaneEngine, ExceptionMidWindowRestoresQueue) {
  Engine e;
  e.enable_lanes(2, 10.0);  // wide horizon: one window holds everything
  std::vector<int> fired;
  e.schedule_at(1.0, [&] { fired.push_back(1); });
  e.schedule_at(2.0, [] { throw SimError("boom"); });
  {
    const Engine::LaneScope scope(e, 1);
    e.schedule_at(3.0, [&] { fired.push_back(3); });
    e.schedule_at(4.0, [&] { fired.push_back(4); });
  }
  EXPECT_THROW(e.run(), SimError);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(e.events_pending(), 2u);
  e.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(LaneEngine, LaneTagRoutingAndScope) {
  Engine e;
  e.enable_lanes(3, 1.0);
  EXPECT_EQ(e.current_lane(), 0);
  {
    const Engine::LaneScope scope(e, 2);
    EXPECT_EQ(e.current_lane(), 2);
    {
      const Engine::LaneScope inner(e, 1);
      EXPECT_EQ(e.current_lane(), 1);
    }
    EXPECT_EQ(e.current_lane(), 2);
  }
  EXPECT_EQ(e.current_lane(), 0);
  EXPECT_THROW(e.set_current_lane(3), UsageError);
  EXPECT_THROW(e.set_current_lane(-1), UsageError);
  Engine off;
  off.set_current_lane(7);  // no-op when lane mode is off
  EXPECT_EQ(off.current_lane(), 0);
}

// Per-lane counters: every scheduled event executes exactly once, in
// the lane it was tagged with, and deferred counts the cross-window
// (mailbox) traffic created by scheduling beyond the horizon.
TEST(LaneEngine, CountersTallyScheduledExecutedDeferred) {
  Engine e;
  e.enable_lanes(2, 0.5);
  std::function<void(int)> chain = [&](int n) {
    if (n == 0) return;
    // Beyond the 0.5 horizon and tagged for the other lane: must go
    // through that lane's mailbox at the window boundary.
    const Engine::LaneScope scope(e, n % 2);
    e.schedule_after(1.0, [&chain, n] { chain(n - 1); });
  };
  e.schedule_at(0.0, [&chain] { chain(10); });
  e.run();
  const auto& counters = e.lane_counters();
  ASSERT_EQ(counters.size(), 2u);
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t deferred = 0;
  for (const LaneCounters& c : counters) {
    scheduled += c.scheduled;
    executed += c.executed;
    deferred += c.deferred;
  }
  EXPECT_EQ(scheduled, 11u);
  EXPECT_EQ(executed, 11u);
  EXPECT_GT(deferred, 0u);
  EXPECT_GT(e.lane_windows(), 1u);
  Engine off;
  EXPECT_THROW((void)off.lane_counters(), UsageError);
}

}  // namespace
}  // namespace xts
