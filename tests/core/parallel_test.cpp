#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/error.hpp"

namespace xts {
namespace {

TEST(ParallelPool, CoversEveryIndexExactlyOnce) {
  ParallelPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<int> hits(10000, 0);
  auto body = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  };
  pool.for_range(hits.size(), body);
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ParallelPool, IndexedWritesMatchSerial) {
  ParallelPool pool(4);
  std::vector<double> out(4096, 0.0);
  auto body = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
  };
  pool.for_range(out.size(), body);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<double>(i) * 1.5 + 1.0);
}

TEST(ParallelPool, SingleLaneRunsInline) {
  ParallelPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> hits(100, 0);
  auto body = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  };
  pool.for_range(hits.size(), body);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelPool, ZeroAndTinyRanges) {
  ParallelPool pool(4);
  int calls = 0;
  auto body = [&](std::size_t b, std::size_t e) {
    calls += static_cast<int>(e - b);
  };
  pool.for_range(0, body);
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  auto mark = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  };
  pool.for_range(hits.size(), mark);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelPool, ReusableAcrossManyJobs) {
  ParallelPool pool(3);
  std::vector<int> acc(512, 0);
  auto body = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++acc[i];
  };
  for (int round = 0; round < 100; ++round) pool.for_range(acc.size(), body);
  for (const int a : acc) ASSERT_EQ(a, 100);
}

TEST(ParallelPool, FirstExceptionPropagatesAndPoolSurvives) {
  ParallelPool pool(4);
  auto boom = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      if (i == 1234) throw std::runtime_error("lane failure");
  };
  EXPECT_THROW(pool.for_range(5000, boom), std::runtime_error);
  // The barrier completed despite the throw; the pool is reusable.
  std::vector<int> hits(1000, 0);
  auto body = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  };
  pool.for_range(hits.size(), body);
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ParallelPool, NestedUseIsAnError) {
  ParallelPool pool(2);
  auto nested = [&](std::size_t, std::size_t) {
    auto inner = [](std::size_t, std::size_t) {};
    pool.for_range(4, inner);
  };
  EXPECT_THROW(pool.for_range(1000, nested), UsageError);
}

TEST(ParallelPool, InvalidThreadCountThrows) {
  EXPECT_THROW(ParallelPool(0), UsageError);
  EXPECT_THROW(ParallelPool(-3), UsageError);
}

TEST(ParallelDefaults, WorldThreadsAndGrain) {
  const int wt = default_world_threads();
  const int grain = default_parallel_grain();
  EXPECT_GE(wt, 1);
  EXPECT_GE(grain, 1);
  EXPECT_THROW(set_default_world_threads(0), UsageError);
  EXPECT_THROW(set_default_parallel_grain(0), UsageError);
  set_default_world_threads(7);
  EXPECT_EQ(default_world_threads(), 7);
  set_default_parallel_grain(33);
  EXPECT_EQ(default_parallel_grain(), 33);
  set_default_world_threads(wt);
  set_default_parallel_grain(grain);
}

}  // namespace
}  // namespace xts
