#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace xts {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"beta", Table::num(20LL)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("csvdemo", {"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("a,b\n1,2\n"), std::string::npos);
}

TEST(Table, RowArityIsChecked) {
  Table t("x", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), UsageError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table("x", {}), UsageError);
}

TEST(Table, NumFormatsSignificantDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(0.5, 0), "0");  // rounds to even per printf
  EXPECT_EQ(Table::num(1234LL), "1234");
}

TEST(BenchOptions, ParsesFlags) {
  const char* argv[] = {"prog", "--csv", "--quick"};
  auto opt = BenchOptions::parse(3, const_cast<char**>(argv), "blurb");
  EXPECT_TRUE(opt.csv);
  EXPECT_TRUE(opt.quick);
  EXPECT_FALSE(opt.full);
}

TEST(BenchOptions, RejectsUnknownAndConflicting) {
  const char* bad[] = {"prog", "--wat"};
  EXPECT_THROW(BenchOptions::parse(2, const_cast<char**>(bad), ""),
               UsageError);
  const char* conflict[] = {"prog", "--quick", "--full"};
  EXPECT_THROW(BenchOptions::parse(3, const_cast<char**>(conflict), ""),
               UsageError);
}

}  // namespace
}  // namespace xts
