#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"

namespace xts {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  Rng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsRoughlyHalf) {
  Rng r(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(5);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(child1.next_u64());
    seen.insert(child2.next_u64());
  }
  EXPECT_EQ(seen.size(), 200u) << "child streams should not collide";
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(0.25), 25.75, 1e-12);
}

TEST(SampleSet, PercentileValidation) {
  SampleSet s;
  EXPECT_THROW(s.percentile(0.5), UsageError);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-0.1), UsageError);
  EXPECT_THROW(s.percentile(1.1), UsageError);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 1.0);
}

TEST(SampleSet, PercentileEdgeCases) {
  SampleSet empty;
  EXPECT_THROW(empty.percentile(0.0), UsageError);
  EXPECT_THROW(empty.percentile(1.0), UsageError);
  EXPECT_THROW(empty.min(), UsageError);
  EXPECT_THROW(empty.max(), UsageError);
  EXPECT_EQ(empty.mean(), 0.0);  // mean of nothing is defined as 0

  SampleSet one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 42.0);

  SampleSet two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.percentile(0.0), 10.0);  // q=0 is the minimum
  EXPECT_DOUBLE_EQ(two.percentile(1.0), 20.0);  // q=1 is the maximum
  EXPECT_NEAR(two.percentile(0.5), 15.0, 1e-12);
}

TEST(SampleSet, AddAfterSortKeepsCorrectness) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);  // forces a sort
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

}  // namespace
}  // namespace xts
