#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/store.hpp"
#include "core/cache_stats.hpp"
#include "core/error.hpp"
#include "machine/presets.hpp"
#include "obsv/session.hpp"
#include "runner/sweep.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/world.hpp"

namespace xts::runner {
namespace {

TEST(Sweep, ResultsFollowSubmissionOrder) {
  const std::size_t n = 32;
  // Ascending weights force the scheduler to execute in *reverse*
  // submission order; results must still come back in submission order.
  std::vector<std::function<int()>> points;
  std::vector<double> weights;
  for (std::size_t i = 0; i < n; ++i) {
    points.emplace_back([i] { return static_cast<int>(10 * i); });
    weights.push_back(static_cast<double>(i));
  }
  const auto r = sweep(std::move(points), 4, weights);
  ASSERT_EQ(r.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(r[i], static_cast<int>(10 * i));
}

TEST(Sweep, EmptyPointsReturnsEmpty) {
  EXPECT_TRUE(sweep(std::vector<std::function<int()>>{}, 4).empty());
}

TEST(Sweep, DefaultJobsIsPositive) { EXPECT_GE(default_jobs(), 1); }

TEST(Sweep, Jobs1RunsInlineOnCallingThread) {
  const auto main_id = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  std::vector<bool> in(3, false);
  std::vector<std::function<int()>> points;
  for (std::size_t i = 0; i < seen.size(); ++i)
    points.emplace_back([&, i] {
      seen[i] = std::this_thread::get_id();
      in[i] = in_sweep();
      return 0;
    });
  EXPECT_FALSE(in_sweep());
  (void)sweep(std::move(points), 1);
  EXPECT_FALSE(in_sweep());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], main_id);
    EXPECT_TRUE(in[i]);
  }
}

TEST(Sweep, FirstSubmissionOrderExceptionWinsAndSiblingsStillRun) {
  std::atomic<int> ran{0};
  std::vector<std::function<int()>> points;
  std::vector<double> weights;
  for (int i = 0; i < 8; ++i) {
    points.emplace_back([&ran, i]() -> int {
      ran.fetch_add(1);
      if (i == 2) throw std::runtime_error("second");
      if (i == 5) throw std::runtime_error("fifth");
      return i;
    });
    // Make the later-submitted throwing point execute first.
    weights.push_back(i == 5 ? 100.0 : 1.0);
  }
  try {
    (void)sweep(std::move(points), 4, weights);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "second");
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(Sweep, NestedSubmitIsRejected) {
  std::vector<std::function<int()>> points;
  points.emplace_back([] {
    std::vector<std::function<int()>> inner;
    inner.emplace_back([] { return 1; });
    return sweep(std::move(inner), 1)[0];
  });
  EXPECT_THROW((void)sweep(std::move(points), 2), UsageError);
}

TEST(Sweep, WeightsSizeMismatchIsRejected) {
  std::vector<std::function<int()>> points;
  points.emplace_back([] { return 1; });
  EXPECT_THROW((void)sweep(std::move(points), 2, {1.0, 2.0}), UsageError);
}

TEST(Sweep, SweepIndexCollects) {
  const auto r =
      sweep_index(5, 2, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(r.size(), 5u);
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_EQ(r[i], static_cast<int>(i * i));
}

// ---------------------------------------------------------------------
// Shard merge determinism: with a session observing, the merged
// session state after a sweep must be identical at any jobs count.

double run_world_point(int nranks, int tag) {
  vmpi::WorldConfig cfg;
  cfg.machine = machine::xt4();
  cfg.nranks = nranks;
  vmpi::World w(std::move(cfg));
  return w.run([tag](vmpi::Comm& c) -> Task<void> {
    auto ph = c.phase("sweeptest.phase");
    const int partner = c.rank() ^ 1;
    co_await c.send_wait(partner, tag, 64.0 * (tag + 1));
    (void)co_await c.recv(partner, tag);
    co_await c.barrier();
  });
}

struct SessionFingerprint {
  std::vector<std::tuple<std::uint32_t, int, double, std::uint64_t>>
      summaries;  // (world, nranks, end_time, messages)
  std::vector<std::tuple<std::uint32_t, std::string, std::int32_t, double,
                         double, std::uint64_t>>
      events;  // (world, name, lane, t0, t1, id)
  std::vector<std::tuple<std::string, double, std::size_t>>
      counters;  // (family, total, labels)
  std::vector<double> results;
};

SessionFingerprint run_sweep_under_session(int jobs) {
  obsv::Options opt;
  opt.tracing = true;
  opt.metrics = true;
  obsv::Session& session = obsv::Session::start(opt);

  std::vector<std::function<double()>> points;
  std::vector<double> weights;
  for (int i = 0; i < 6; ++i) {
    const int nranks = 2 + 2 * (i % 3);
    points.emplace_back([nranks, i] { return run_world_point(nranks, i); });
    weights.push_back(static_cast<double>(nranks));
  }
  SessionFingerprint fp;
  fp.results = sweep(std::move(points), jobs, weights);

  for (const auto& s : session.summaries())
    fp.summaries.emplace_back(s.world, s.nranks, s.end_time, s.messages);
  session.sink().for_each([&](const obsv::TraceEvent& e) {
    fp.events.emplace_back(e.world, session.sink().name(e.name), e.lane,
                           e.t0, e.t1, e.id);
  });
  for (const auto& [family, fam] : session.registry().counters())
    fp.counters.emplace_back(family,
                             session.registry().counter_total(family),
                             session.registry().counter_labels(family));
  obsv::Session::stop();
  return fp;
}

TEST(SweepObsv, MergedSessionStateIdenticalAtAnyJobs) {
  const auto serial = run_sweep_under_session(1);
  const auto parallel = run_sweep_under_session(8);

  EXPECT_EQ(serial.results, parallel.results);
  ASSERT_FALSE(serial.summaries.empty());
  EXPECT_EQ(serial.summaries, parallel.summaries);
  ASSERT_FALSE(serial.events.empty());
  EXPECT_EQ(serial.events, parallel.events);
  ASSERT_FALSE(serial.counters.empty());
  EXPECT_EQ(serial.counters, parallel.counters);
  // World ordinals are rebased in submission order: 6 worlds, 0..5.
  for (std::size_t i = 0; i < serial.summaries.size(); ++i)
    EXPECT_EQ(std::get<0>(serial.summaries[i]),
              static_cast<std::uint32_t>(i));
}

TEST(SweepObsv, NoSessionNeedsNoShards) {
  ASSERT_EQ(obsv::Session::active(), nullptr);
  const auto r = sweep_index(
      4, 2, [](std::size_t i) { return run_world_point(2, static_cast<int>(i)); });
  ASSERT_EQ(r.size(), 4u);
  for (const double t : r) EXPECT_GT(t, 0.0);
}

// ---------------------------------------------------------------------
// Scenario-result cache integration: probe-before-schedule, in-flight
// dedup, replay fidelity.  All tests use a memory-only store
// (Store::configure("")), so nothing touches disk.

struct CacheCounters {
  std::uint64_t hits, misses, dedups, writes, bypassed;
  static CacheCounters now() {
    auto& s = scenario_cache_stats();
    return {s.hits.load(), s.misses.load(), s.dedups.load(),
            s.writes.load(), s.bypassed.load()};
  }
  CacheCounters since(const CacheCounters& base) const {
    return {hits - base.hits, misses - base.misses, dedups - base.dedups,
            writes - base.writes, bypassed - base.bypassed};
  }
};

class SweepCache : public ::testing::Test {
 protected:
  void SetUp() override { cache::Store::reset(); }
  void TearDown() override {
    cache::Store::reset();
    if (obsv::Session::active() != nullptr) obsv::Session::stop();
  }
  static cache::Key key_of(int i) {
    return cache::Fingerprint().add("point", i).done();
  }
};

TEST_F(SweepCache, SecondSweepReplaysFromTheStore) {
  cache::Store::configure("");
  std::atomic<int> executed{0};
  const auto run = [&] {
    std::vector<std::function<double()>> points;
    std::vector<cache::Key> keys;
    for (int i = 0; i < 5; ++i) {
      points.emplace_back([&executed, i] {
        executed.fetch_add(1);
        return 1.5 * i;
      });
      keys.push_back(key_of(i));
    }
    return sweep(std::move(points), 2, {}, keys);
  };
  const auto base = CacheCounters::now();
  const auto cold = run();
  auto d = CacheCounters::now().since(base);
  EXPECT_EQ(executed.load(), 5);
  EXPECT_EQ(d.misses, 5u);
  EXPECT_EQ(d.writes, 5u);
  EXPECT_EQ(d.hits, 0u);

  const auto warm = run();
  d = CacheCounters::now().since(base);
  EXPECT_EQ(executed.load(), 5) << "warm sweep must not execute points";
  EXPECT_EQ(d.hits, 5u);
  EXPECT_EQ(warm, cold);
}

TEST_F(SweepCache, NoStoreArmedIgnoresKeys) {
  ASSERT_EQ(cache::Store::process(), nullptr);
  std::atomic<int> executed{0};
  for (int round = 0; round < 2; ++round) {
    std::vector<std::function<double()>> points;
    std::vector<cache::Key> keys;
    for (int i = 0; i < 3; ++i) {
      points.emplace_back([&executed] {
        executed.fetch_add(1);
        return 1.0;
      });
      keys.push_back(key_of(i));
    }
    (void)sweep(std::move(points), 2, {}, keys);
  }
  EXPECT_EQ(executed.load(), 6);
}

TEST_F(SweepCache, InFlightDuplicatesRunOnce) {
  cache::Store::configure("");
  std::atomic<int> executed{0};
  std::vector<std::function<double()>> points;
  std::vector<cache::Key> keys;
  for (int i = 0; i < 6; ++i) {
    points.emplace_back([&executed, i] {
      executed.fetch_add(1);
      return 7.0 + i / 3;  // same value for aliased triples
    });
    keys.push_back(key_of(i / 3));  // two distinct keys, 3 points each
  }
  const auto base = CacheCounters::now();
  const auto r = sweep(std::move(points), 4, {}, keys);
  const auto d = CacheCounters::now().since(base);
  EXPECT_EQ(executed.load(), 2);
  EXPECT_EQ(d.dedups, 4u);
  EXPECT_EQ(d.misses, 2u);
  EXPECT_EQ(r, (std::vector<double>{7.0, 7.0, 7.0, 8.0, 8.0, 8.0}));
}

TEST_F(SweepCache, InvalidKeysAlwaysRun) {
  cache::Store::configure("");
  std::atomic<int> executed{0};
  for (int round = 0; round < 2; ++round) {
    std::vector<std::function<double()>> points;
    std::vector<cache::Key> keys(3);  // all default: valid == false
    for (int i = 0; i < 3; ++i)
      points.emplace_back([&executed] {
        executed.fetch_add(1);
        return 0.0;
      });
    (void)sweep(std::move(points), 2, {}, keys);
  }
  EXPECT_EQ(executed.load(), 6);
}

TEST_F(SweepCache, ErrorsAreNotCachedAndAliasesShareThem) {
  cache::Store::configure("");
  std::atomic<int> executed{0};
  const auto run = [&] {
    std::vector<std::function<double()>> points;
    std::vector<cache::Key> keys;
    for (int i = 0; i < 3; ++i) {
      points.emplace_back([&executed]() -> double {
        executed.fetch_add(1);
        throw std::runtime_error("boom");
      });
      keys.push_back(key_of(42));  // all three alias one key
    }
    return sweep(std::move(points), 2, {}, keys);
  };
  const auto base = CacheCounters::now();
  EXPECT_THROW((void)run(), std::runtime_error);
  EXPECT_EQ(executed.load(), 1);  // canonical ran, aliases shared the error
  EXPECT_EQ(CacheCounters::now().since(base).writes, 0u);
  // Nothing was stored: the rerun executes (and throws) again.
  EXPECT_THROW((void)run(), std::runtime_error);
  EXPECT_EQ(executed.load(), 2);
  EXPECT_EQ(CacheCounters::now().since(base).writes, 0u);
}

TEST_F(SweepCache, KeysSizeMismatchIsRejected) {
  cache::Store::configure("");
  std::vector<std::function<double()>> points;
  points.emplace_back([] { return 1.0; });
  const std::vector<cache::Key> keys(2);
  EXPECT_THROW((void)sweep(std::move(points), 2, {}, keys), UsageError);
}

TEST_F(SweepCache, TracingSessionBypassesTheCache) {
  cache::Store::configure("");
  obsv::Options opt;
  opt.tracing = true;
  (void)obsv::Session::start(opt);
  std::atomic<int> executed{0};
  const auto base = CacheCounters::now();
  for (int round = 0; round < 2; ++round) {
    std::vector<std::function<double()>> points;
    std::vector<cache::Key> keys;
    for (int i = 0; i < 3; ++i) {
      points.emplace_back([&executed] {
        executed.fetch_add(1);
        return 2.0;
      });
      keys.push_back(key_of(i));
    }
    (void)sweep(std::move(points), 2, {}, keys);
  }
  obsv::Session::stop();
  const auto d = CacheCounters::now().since(base);
  EXPECT_EQ(executed.load(), 6) << "tracing runs must never be replayed";
  EXPECT_EQ(d.bypassed, 6u);
  EXPECT_EQ(d.hits + d.misses + d.writes, 0u);
}

/// The acceptance property behind `--metrics` byte-identity: a warm
/// sweep under a metrics session reproduces the exact merged session
/// state (world summaries, counter families) a cold sweep built, while
/// executing zero points.
TEST_F(SweepCache, ReplayReproducesMergedSessionState) {
  cache::Store::configure("");
  std::atomic<int> executed{0};
  struct Observed {
    std::vector<double> results;
    std::vector<std::tuple<std::uint32_t, int, double, std::uint64_t>>
        summaries;
    std::vector<std::tuple<std::string, double, std::size_t>> counters;
  };
  const auto run = [&] {
    obsv::Options opt;
    opt.metrics = true;
    obsv::Session& session = obsv::Session::start(opt);
    std::vector<std::function<double()>> points;
    std::vector<cache::Key> keys;
    for (int i = 0; i < 4; ++i) {
      const int nranks = 2 + 2 * (i % 2);
      points.emplace_back([&executed, nranks, i] {
        executed.fetch_add(1);
        return run_world_point(nranks, i);
      });
      keys.push_back(key_of(i));
    }
    Observed o;
    o.results = sweep(std::move(points), 2, {}, keys);
    for (const auto& s : session.summaries())
      o.summaries.emplace_back(s.world, s.nranks, s.end_time, s.messages);
    for (const auto& [family, fam] : session.registry().counters())
      o.counters.emplace_back(family,
                              session.registry().counter_total(family),
                              session.registry().counter_labels(family));
    obsv::Session::stop();
    return o;
  };
  const auto cold = run();
  ASSERT_EQ(executed.load(), 4);
  ASSERT_FALSE(cold.summaries.empty());
  ASSERT_FALSE(cold.counters.empty());
  const auto warm = run();
  EXPECT_EQ(executed.load(), 4) << "warm sweep must replay, not rerun";
  EXPECT_EQ(warm.results, cold.results);
  EXPECT_EQ(warm.summaries, cold.summaries);
  EXPECT_EQ(warm.counters, cold.counters);
}

}  // namespace
}  // namespace xts::runner
