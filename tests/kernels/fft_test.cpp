#include "kernels/fft.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <cmath>
#include <vector>

#include "core/rng.hpp"

namespace xts::kernels {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return x;
}

double max_abs_diff(std::span<const Complex> a, std::span<const Complex> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(Fft, MatchesReferenceDft) {
  for (std::size_t n : {1u, 2u, 4u, 8u, 64u, 256u}) {
    auto x = random_signal(n, n);
    const auto expected = dft_reference(x);
    fft(x);
    EXPECT_LT(max_abs_diff(x, expected), 1e-9 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(Fft, DeltaGivesFlatSpectrum) {
  std::vector<Complex> x(16, Complex(0, 0));
  x[0] = Complex(1, 0);
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - Complex(1, 0)), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Complex> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double angle =
        2.0 * 3.14159265358979323846 * static_cast<double>(tone * t) /
        static_cast<double>(n);
    x[t] = Complex(std::cos(angle), std::sin(angle));
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone)
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
  }
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<Complex> x(12);
  EXPECT_THROW(fft(x), UsageError);
  std::vector<Complex> empty;
  EXPECT_THROW(fft(empty), UsageError);
}

TEST(Fft, ParsevalHolds) {
  auto x = random_signal(128, 42);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-9);
}

// Property sweep: ifft(fft(x)) == x across sizes.
class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 1000 + n);
  auto x = original;
  fft(x);
  ifft(x);
  EXPECT_LT(max_abs_diff(x, original), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 16, 128, 1024, 4096,
                                           1u << 15));

TEST(FftWork, ScalesAsNLogN) {
  const auto w1 = fft_work(1024.0);
  const auto w2 = fft_work(2048.0);
  EXPECT_NEAR(w1.flops, 5.0 * 1024 * 10, 1e-6);
  EXPECT_NEAR(w2.flops / w1.flops, 2.0 * 11.0 / 10.0, 1e-9);
  EXPECT_GT(w1.stream_bytes, w1.flops);  // memory-intensive kernel
}

}  // namespace
}  // namespace xts::kernels
