#include "kernels/lu.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <cmath>
#include <vector>

#include "core/rng.hpp"

namespace xts::kernels {
namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(n * n);
  for (auto& x : m) x = rng.uniform(-1.0, 1.0);
  // Diagonal boost keeps conditioning reasonable for residual checks.
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] += 2.0;
  return m;
}

double solve_residual(std::size_t n, std::uint64_t seed,
                      std::size_t block) {
  const auto a0 = random_matrix(n, seed);
  auto a = a0;
  std::vector<int> piv(n);
  if (!lu_factor(n, a, piv, block)) return 1e30;
  Rng rng(seed + 1);
  std::vector<double> b(n), x;
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  x = b;
  lu_solve(n, a, piv, x);
  // Residual ||A x - b||_inf relative to ||b||_inf.
  double max_r = 0.0, max_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0;
    for (std::size_t j = 0; j < n; ++j) ax += a0[i * n + j] * x[j];
    max_r = std::max(max_r, std::abs(ax - b[i]));
    max_b = std::max(max_b, std::abs(b[i]));
  }
  return max_r / max_b;
}

TEST(Lu, SolvesRandomSystems) {
  for (std::size_t n : {1u, 2u, 5u, 17u, 64u, 101u}) {
    EXPECT_LT(solve_residual(n, 7 * n + 1, 32), 1e-10) << "n=" << n;
  }
}

// Blocked and unblocked paths agree across block sizes.
class LuBlocks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuBlocks, BlockSizeDoesNotChangeTheAnswer) {
  EXPECT_LT(solve_residual(73, 99, GetParam()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Blocks, LuBlocks,
                         ::testing::Values(1, 4, 16, 32, 73, 100));

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // [[0, 1], [1, 0]] requires a swap.
  std::vector<double> a{0.0, 1.0, 1.0, 0.0};
  std::vector<int> piv(2);
  ASSERT_TRUE(lu_factor(2, a, piv));
  std::vector<double> b{3.0, 4.0};
  lu_solve(2, a, piv, b);
  EXPECT_DOUBLE_EQ(b[0], 4.0);  // x solves [[0,1],[1,0]] x = (3,4)
  EXPECT_DOUBLE_EQ(b[1], 3.0);
}

TEST(Lu, SingularMatrixReportsFalse) {
  std::vector<double> a(9, 1.0);  // rank-1
  std::vector<int> piv(3);
  EXPECT_FALSE(lu_factor(3, a, piv));
}

TEST(Lu, BadArgumentsThrow) {
  std::vector<double> a(4);
  std::vector<int> piv(2);
  EXPECT_THROW(lu_factor(3, a, piv), UsageError);
  EXPECT_THROW(lu_factor(2, a, piv, 0), UsageError);
  std::vector<double> b(1);
  EXPECT_THROW(lu_solve(2, a, piv, b), UsageError);
}

TEST(LuWork, TwoThirdsNCubed) {
  const auto w = lu_work(300.0);
  EXPECT_NEAR(w.flops, 2.0 / 3.0 * 300.0 * 300.0 * 300.0, 1.0);
  EXPECT_GT(w.flop_efficiency, 0.5);
}

}  // namespace
}  // namespace xts::kernels
