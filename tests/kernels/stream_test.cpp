#include "kernels/stream.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <vector>

namespace xts::kernels {
namespace {

TEST(Stream, TriadComputesCorrectly) {
  std::vector<double> a(100, 0.0), b(100), c(100);
  for (std::size_t i = 0; i < 100; ++i) {
    b[i] = static_cast<double>(i);
    c[i] = 2.0;
  }
  stream_triad(a, b, c, 3.0);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a[i], static_cast<double>(i) + 6.0);
}

TEST(Stream, CopyScaleAdd) {
  std::vector<double> a(10, 0.0), b(10, 5.0), c(10, 2.0);
  stream_copy(a, b);
  for (const double x : a) EXPECT_DOUBLE_EQ(x, 5.0);
  stream_scale(a, b, 2.0);
  for (const double x : a) EXPECT_DOUBLE_EQ(x, 10.0);
  stream_add(a, b, c);
  for (const double x : a) EXPECT_DOUBLE_EQ(x, 7.0);
}

TEST(Stream, MismatchedLengthsThrow) {
  std::vector<double> a(10), b(11), c(10);
  EXPECT_THROW(stream_triad(a, b, c, 1.0), UsageError);
  EXPECT_THROW(stream_copy(a, b), UsageError);
}

TEST(StreamWork, TwentyFourBytesPerElement) {
  const auto w = triad_work(1.0e6);
  EXPECT_DOUBLE_EQ(w.stream_bytes, 24.0e6);
  // Pure-bandwidth descriptor: the ALU work hides under the streams.
  EXPECT_DOUBLE_EQ(w.flops, 0.0);
  EXPECT_DOUBLE_EQ(triad_bytes(1.0e6), 24.0e6);
}

}  // namespace
}  // namespace xts::kernels
