#include "kernels/dgemm.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <vector>

#include "core/rng.hpp"

namespace xts::kernels {
namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(n);
  for (auto& x : m) x = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(Dgemm, MatchesNaiveSquare) {
  const std::size_t n = 37;
  auto a = random_matrix(n * n, 1);
  auto b = random_matrix(n * n, 2);
  auto c1 = random_matrix(n * n, 3);
  auto c2 = c1;
  dgemm(n, n, n, 1.5, a, b, 0.5, c1);
  dgemm_naive(n, n, n, 1.5, a, b, 0.5, c2);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST(Dgemm, IdentityIsNeutral) {
  const std::size_t n = 16;
  std::vector<double> eye(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eye[i * n + i] = 1.0;
  auto b = random_matrix(n * n, 7);
  std::vector<double> c(n * n, 0.0);
  dgemm(n, n, n, 1.0, eye, b, 0.0, c);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c[i], b[i], 1e-12);
}

TEST(Dgemm, BetaScalesExistingC) {
  const std::size_t n = 8;
  std::vector<double> zero(n * n, 0.0);
  std::vector<double> c(n * n, 2.0);
  dgemm(n, n, n, 1.0, zero, zero, 3.0, c);
  for (const double x : c) EXPECT_DOUBLE_EQ(x, 6.0);
}

TEST(Dgemm, BadSpanSizesThrow) {
  std::vector<double> small(4, 0.0);
  std::vector<double> c(16, 0.0);
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, small, small, 0.0, c), UsageError);
}

// Rectangular shapes, blocked vs naive.
class DgemmShapes : public ::testing::TestWithParam<
                        std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(DgemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  auto a = random_matrix(m * k, 11);
  auto b = random_matrix(k * n, 13);
  auto c1 = random_matrix(m * n, 17);
  auto c2 = c1;
  dgemm(m, n, k, -0.7, a, b, 1.2, c1);
  dgemm_naive(m, n, k, -0.7, a, b, 1.2, c2);
  double max_err = 0.0;
  for (std::size_t i = 0; i < m * n; ++i)
    max_err = std::max(max_err, std::abs(c1[i] - c2[i]));
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 3, 2),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 130, 129),
                      std::make_tuple(128, 1, 200),
                      std::make_tuple(1, 300, 7),
                      std::make_tuple(100, 100, 1)));

TEST(DgemmWork, CountsFlopsAndTraffic) {
  const auto w = dgemm_work(1000.0);
  EXPECT_DOUBLE_EQ(w.flops, 2.0e9);
  EXPECT_NEAR(w.flop_efficiency, 0.88, 1e-12);
  EXPECT_GT(w.stream_bytes, 0.0);
  // Traffic is O(n^2): tiny compared with flops for n = 1000.
  EXPECT_LT(w.stream_bytes, w.flops * 0.1);
}

TEST(DgemmWork, ComplexQuadruplesFlops) {
  const auto real = gemm_update_work(100, 100, 100, false);
  const auto cplx = gemm_update_work(100, 100, 100, true);
  EXPECT_DOUBLE_EQ(cplx.flops, 4.0 * real.flops);
}

}  // namespace
}  // namespace xts::kernels
