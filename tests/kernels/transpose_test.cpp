#include "kernels/transpose.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <vector>

#include "core/rng.hpp"

namespace xts::kernels {
namespace {

TEST(Transpose, RectangularCorrect) {
  const std::size_t rows = 37, cols = 53;
  Rng rng(1);
  std::vector<double> in(rows * cols), out(rows * cols);
  for (auto& x : in) x = rng.uniform(0, 1);
  transpose(rows, cols, in, out);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      EXPECT_DOUBLE_EQ(out[j * rows + i], in[i * cols + j]);
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const std::size_t rows = 64, cols = 96;
  Rng rng(2);
  std::vector<double> in(rows * cols), mid(rows * cols), out(rows * cols);
  for (auto& x : in) x = rng.uniform(0, 1);
  transpose(rows, cols, in, mid);
  transpose(cols, rows, mid, out);
  EXPECT_EQ(in, out);
}

TEST(Transpose, InplaceSquare) {
  const std::size_t n = 45;
  Rng rng(3);
  std::vector<double> a(n * n);
  for (auto& x : a) x = rng.uniform(0, 1);
  auto expected = a;
  transpose_square_inplace(n, a);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(a[i * n + j], expected[j * n + i]);
}

TEST(Transpose, TooSmallSpansThrow) {
  std::vector<double> in(10), out(10);
  EXPECT_THROW(transpose(4, 4, in, out), UsageError);
  EXPECT_THROW(transpose_square_inplace(4, in), UsageError);
}

TEST(TransposeWork, SixteenBytesPerElement) {
  EXPECT_DOUBLE_EQ(transpose_work(1000.0).stream_bytes, 16000.0);
}

}  // namespace
}  // namespace xts::kernels
