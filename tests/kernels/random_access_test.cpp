#include "kernels/random_access.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <vector>

namespace xts::kernels {
namespace {

TEST(RaStream, StartZeroMatchesSequentialGeneration) {
  // starts(0) must position the stream so that next() from position 0
  // equals stepping the LFSR from its seed.
  RaStream a(0);
  RaStream b(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RaStream, StartsSkipsAhead) {
  RaStream base(0);
  const int skip = 1000;
  for (int i = 0; i < skip; ++i) base.next();
  RaStream skipped(skip);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(skipped.next(), base.next());
}

TEST(RaStream, NegativeStartWrapsPeriod) {
  RaStream a(-1);
  // No crash and produces a value; stepping once more aligns with 0.
  (void)a.next();
  SUCCEED();
}

TEST(RandomAccess, DoubleUpdateRestoresTable) {
  std::vector<std::uint64_t> table(1u << 10);
  random_access_init(table);
  const std::uint64_t updates = 4 * table.size();
  random_access_update(table, updates, 0);
  // XOR updates are involutive: applying the identical stream again
  // must restore the initial table (the HPCC verification).
  random_access_update(table, updates, 0);
  EXPECT_EQ(random_access_errors(table), 0u);
}

TEST(RandomAccess, SingleUpdatePassActuallyChangesTable) {
  std::vector<std::uint64_t> table(1u << 8);
  random_access_init(table);
  // 4x updates (the HPCC ratio): most entries are hit an odd number of
  // times by at least one XOR and differ from the identity fill.
  random_access_update(table, 4 * table.size(), 0);
  EXPECT_GT(random_access_errors(table), table.size() / 4);
}

TEST(RandomAccess, NonPowerOfTwoTableThrows) {
  std::vector<std::uint64_t> table(1000);
  EXPECT_THROW(random_access_update(table, 10), UsageError);
}

TEST(RandomAccess, DisjointStreamSegmentsComposeToWholeStream) {
  // Updates [0,n) applied as two halves equal one full pass — the
  // property the distributed MPI-RA benchmark relies on.
  std::vector<std::uint64_t> whole(1u << 9), split(1u << 9);
  random_access_init(whole);
  random_access_init(split);
  const std::uint64_t n = 2048;
  random_access_update(whole, n, 0);
  random_access_update(split, n / 2, 0);
  random_access_update(split, n / 2, static_cast<std::int64_t>(n / 2));
  EXPECT_EQ(whole, split);
}

TEST(RandomAccessWork, OneAccessPerUpdate) {
  const auto w = random_access_work(1.0e6);
  EXPECT_DOUBLE_EQ(w.random_accesses, 1.0e6);
  EXPECT_DOUBLE_EQ(w.stream_bytes, 0.0);
}

}  // namespace
}  // namespace xts::kernels
