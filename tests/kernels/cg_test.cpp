#include "kernels/cg.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

#include <cmath>
#include <vector>

#include "core/rng.hpp"

namespace xts::kernels {
namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double residual_norm(std::size_t nx, std::size_t ny,
                     std::span<const double> b, std::span<const double> x) {
  std::vector<double> ax(nx * ny);
  apply_laplacian_5pt(nx, ny, x, ax);
  double s = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double r = b[i] - ax[i];
    s += r * r;
    bn += b[i] * b[i];
  }
  return std::sqrt(s) / std::sqrt(bn > 0 ? bn : 1.0);
}

TEST(Laplacian, InteriorStencil) {
  const std::size_t nx = 5, ny = 5;
  std::vector<double> x(nx * ny, 1.0), y(nx * ny);
  apply_laplacian_5pt(nx, ny, x, y);
  // Interior of constant field: 4 - 4 = 0; boundaries see fewer
  // neighbours (Dirichlet), so positive.
  EXPECT_DOUBLE_EQ(y[2 * nx + 2], 0.0);
  EXPECT_DOUBLE_EQ(y[0], 2.0);       // corner: 4 - 2
  EXPECT_DOUBLE_EQ(y[2], 1.0);       // edge: 4 - 3
}

TEST(Cg, SolvesSmallSystem) {
  const std::size_t nx = 20, ny = 15;
  const auto b = random_vec(nx * ny, 1);
  std::vector<double> x(nx * ny, 0.0);
  const auto res = cg_solve(nx, ny, b, x, 1e-10, 2000);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(nx, ny, b, x), 1e-8);
}

TEST(Cg, ChronopoulosGearSolvesSameSystem) {
  const std::size_t nx = 20, ny = 15;
  const auto b = random_vec(nx * ny, 1);
  std::vector<double> x(nx * ny, 0.0);
  const auto res = cg_solve_chronopoulos_gear(nx, ny, b, x, 1e-10, 2000);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(nx, ny, b, x), 1e-8);
}

TEST(Cg, VariantsConvergeInSimilarIterations) {
  // C-G is a rearrangement, not a different method: iteration counts
  // should match closely (identical in exact arithmetic).
  const std::size_t nx = 32, ny = 32;
  const auto b = random_vec(nx * ny, 7);
  std::vector<double> x1(nx * ny, 0.0), x2(nx * ny, 0.0);
  const auto r1 = cg_solve(nx, ny, b, x1, 1e-9, 5000);
  const auto r2 = cg_solve_chronopoulos_gear(nx, ny, b, x2, 1e-9, 5000);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_NEAR(r1.iterations, r2.iterations, 3);
}

TEST(Cg, ResidualHistoryReachesTolerance) {
  const std::size_t nx = 16, ny = 16;
  const auto b = random_vec(nx * ny, 3);
  std::vector<double> x(nx * ny, 0.0);
  const auto res = cg_solve(nx, ny, b, x, 1e-8, 2000);
  ASSERT_GE(res.residual_history.size(), 2u);
  EXPECT_LE(res.residual_history.back(), 1e-8);
  // Monotone overall decay: last residual far below first.
  EXPECT_LT(res.residual_history.back(),
            res.residual_history.front() * 1e-6);
}

TEST(Cg, WarmStartConvergesFaster) {
  const std::size_t nx = 24, ny = 24;
  const auto b = random_vec(nx * ny, 5);
  std::vector<double> cold(nx * ny, 0.0);
  const auto rc = cg_solve(nx, ny, b, cold, 1e-9, 5000);
  // Perturb the solution slightly and re-solve: few iterations needed.
  auto warm = cold;
  for (auto& v : warm) v += 1e-6;
  const auto rw = cg_solve(nx, ny, b, warm, 1e-9, 5000);
  EXPECT_LT(rw.iterations, rc.iterations / 2);
}

TEST(Cg, BadSizesThrow) {
  std::vector<double> b(10), x(10);
  EXPECT_THROW(cg_solve(3, 4, b, x), UsageError);
  EXPECT_THROW(cg_solve(0, 4, b, x), UsageError);
}

// Property: both variants solve grids of many shapes.
class CgGrids : public ::testing::TestWithParam<
                    std::tuple<std::size_t, std::size_t, bool>> {};

TEST_P(CgGrids, Converges) {
  const auto [nx, ny, use_cg_variant] = GetParam();
  const auto b = random_vec(nx * ny, nx * 100 + ny);
  std::vector<double> x(nx * ny, 0.0);
  const auto res = use_cg_variant
                       ? cg_solve_chronopoulos_gear(nx, ny, b, x, 1e-8, 20000)
                       : cg_solve(nx, ny, b, x, 1e-8, 20000);
  EXPECT_TRUE(res.converged) << nx << "x" << ny;
  EXPECT_LT(residual_norm(nx, ny, b, x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, CgGrids,
    ::testing::Combine(::testing::Values<std::size_t>(1, 8, 31, 64),
                       ::testing::Values<std::size_t>(1, 9, 33),
                       ::testing::Bool()));

TEST(CgWork, BandwidthBoundProfile) {
  const auto w = cg_iteration_work(1.0e6);
  EXPECT_GT(w.stream_bytes, w.flops);  // stencil solvers stream memory
}

}  // namespace
}  // namespace xts::kernels
