#include "hpcc/hpcc.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/units.hpp"
#include "machine/presets.hpp"

namespace xts::hpcc {
namespace {

using machine::ExecMode;
using namespace xts::units;

// These tests check that the simulated HPCC suite reproduces the
// paper's qualitative findings (§5.1 and Figs 2-11), which is the
// whole point of the reproduction.

TEST(HpccLocal, DgemmTracksClockAndSurvivesEp) {
  const auto xt3 = dgemm_gflops(machine::xt3_single_core());
  const auto xt4 = dgemm_gflops(machine::xt4());
  // Fig 5: ~4.2 vs ~4.6 GFLOPS, EP ~= SP (high temporal locality).
  EXPECT_NEAR(xt3.sp, 4.2, 0.3);
  EXPECT_NEAR(xt4.sp, 4.6, 0.3);
  EXPECT_GT(xt4.ep, 0.95 * xt4.sp);
}

TEST(HpccLocal, FftImprovesAboutTwentyFivePercent) {
  const auto xt3 = fft_gflops(machine::xt3_single_core());
  const auto xt4 = fft_gflops(machine::xt4());
  // Fig 4: XT3 ~0.5, XT4 ~0.6 GFLOPS; EP mildly below SP.
  EXPECT_NEAR(xt3.sp, 0.50, 0.08);
  EXPECT_NEAR(xt4.sp, 0.60, 0.08);
  EXPECT_GT(xt4.sp, 1.1 * xt3.sp);
  EXPECT_LT(xt4.ep, xt4.sp);
  EXPECT_GT(xt4.ep, 0.75 * xt4.sp);
}

TEST(HpccLocal, StreamSecondCoreAddsLittle) {
  const auto xt3 = stream_triad_gbs(machine::xt3_single_core());
  const auto xt4 = stream_triad_gbs(machine::xt4());
  // Fig 7: XT3 ~4, XT4 SP ~6.5 GB/s; EP per-core about half SP.
  EXPECT_NEAR(xt3.sp, 4.0, 0.3);
  EXPECT_NEAR(xt4.sp, 6.5, 0.4);
  EXPECT_NEAR(xt4.ep, 3.5, 0.4);
  // Per-socket EP (2 cores) barely exceeds SP.
  EXPECT_LT(2.0 * xt4.ep, 1.15 * xt4.sp);
}

TEST(HpccLocal, RandomAccessEpHalvesPerCore) {
  const auto xt3 = random_access_gups(machine::xt3_single_core());
  const auto xt4 = random_access_gups(machine::xt4());
  // Fig 6: XT4 SP ~0.02 GUPS, EP = SP/2; XT3 in between.
  EXPECT_NEAR(xt4.sp, 0.020, 0.003);
  EXPECT_NEAR(xt4.ep / xt4.sp, 0.5, 0.05);
  EXPECT_GT(xt4.sp, xt3.sp);
  // Same per-socket performance with one or two cores active.
  EXPECT_NEAR(2.0 * xt4.ep, xt4.sp, 0.15 * xt4.sp);
}

TEST(HpccNet, LatencyMatchesFig2) {
  const auto xt3 =
      net_latency(machine::xt3_single_core(), ExecMode::kSN, 16);
  const auto xt4sn = net_latency(machine::xt4(), ExecMode::kSN, 16);
  const auto xt4vn = net_latency(machine::xt4(), ExecMode::kVN, 32);
  // XT4 SN ~4.5 us beats XT3 ~6 us; VN mode is clearly worse.
  EXPECT_NEAR(xt4sn.pp_min, 4.5 * us, 1.0 * us);
  EXPECT_NEAR(xt3.pp_min, 6.0 * us, 1.0 * us);
  EXPECT_GT(xt4vn.pp_max, 1.5 * xt4sn.pp_max);
  EXPECT_GT(xt4vn.random_ring, xt4sn.random_ring);
}

TEST(HpccNet, BandwidthMatchesFig3) {
  const auto xt3 =
      net_bandwidth(machine::xt3_single_core(), ExecMode::kSN, 64);
  const auto xt4sn = net_bandwidth(machine::xt4(), ExecMode::kSN, 64);
  // Fig 3: ping-pong ~1.15 vs ~2+ GB/s.
  EXPECT_NEAR(xt3.pp_avg, 1.1 * GB_per_s, 0.2 * GB_per_s);
  EXPECT_NEAR(xt4sn.pp_avg, 2.0 * GB_per_s, 0.3 * GB_per_s);
  // The multi-hop random ring contends for links: below the 1-hop
  // natural ring, which itself is at or below ping-pong.
  EXPECT_LT(xt4sn.random_ring, 0.95 * xt4sn.natural_ring);
  EXPECT_LE(xt4sn.natural_ring, xt4sn.pp_avg * 1.02);
}

TEST(HpccGlobal, HplScalesNearlyLinearly) {
  const auto& m = machine::xt4();
  const double t64 = hpl_tflops(m, ExecMode::kVN, 64);
  const double t128 = hpl_tflops(m, ExecMode::kVN, 128);
  EXPECT_GT(t128, 1.7 * t64);
  // Reasonable efficiency: >60% of peak.
  EXPECT_GT(t64, 0.6 * 64 * m.peak_flops_per_core() / 1e12);
}

TEST(HpccGlobal, HplPerCoreNearlyClockProportional) {
  // Fig 8: XT4 per-core HPL ~ clock ratio over XT3, in SN and VN.
  const double xt3 =
      hpl_tflops(machine::xt3_single_core(), ExecMode::kSN, 64) / 64;
  const double xt4vn = hpl_tflops(machine::xt4(), ExecMode::kVN, 64) / 64;
  EXPECT_GT(xt4vn, xt3);
  EXPECT_LT(xt4vn, 1.35 * xt3);
}

TEST(HpccGlobal, MpiFftVnPerCoreWorseThanSn) {
  // Fig 9: NIC sharing hits MPI-FFT in VN mode on a per-core basis.
  const auto& m = machine::xt4();
  const double sn = mpifft_gflops(m, ExecMode::kSN, 32) / 32;
  const double vn = mpifft_gflops(m, ExecMode::kVN, 32) / 32;
  EXPECT_LT(vn, 0.9 * sn);
}

TEST(HpccGlobal, PtransXt4AdvantageCappedByUnchangedLinks) {
  // Fig 10: link bandwidth did not change XT3 -> XT4, so at the paper's
  // scale PTRANS per socket is flat.  At test scale (32 sockets) the
  // benchmark is still partially injection-bound, so the XT4 may lead —
  // but never by more than the injection ratio (2.0/1.1 = 1.82), and
  // the advantage shrinks toward 1 as the machine grows and the
  // unchanged links take over (measured: 1.6 @32 -> 1.2 @512; the
  // at-scale behaviour is exercised by bench_fig08_11_global --full).
  const double xt3_32 =
      ptrans_gbs(machine::xt3_single_core(), ExecMode::kSN, 32);
  const double xt4_32 = ptrans_gbs(machine::xt4(), ExecMode::kSN, 32);
  const double ratio32 = xt4_32 / xt3_32;
  EXPECT_GT(ratio32, 1.0);
  EXPECT_LT(ratio32, 1.85);
}

TEST(HpccGlobal, MpiRaVnSlowerThanSn) {
  // Fig 11: VN mode is slower per-core AND per-socket for MPI-RA.
  const auto& m = machine::xt4();
  const double sn = mpira_gups(m, ExecMode::kSN, 32);
  const double vn_socket = mpira_gups(m, ExecMode::kVN, 64);  // same nodes
  EXPECT_LT(vn_socket, sn);
}

TEST(HpccBiBw, TwoPairsHalvePerPairBandwidth) {
  // Figs 12/13.
  const auto& m = machine::xt4();
  const auto one = bidirectional_bandwidth(m, ExecMode::kVN, 1, 4.0 * MB);
  const auto two = bidirectional_bandwidth(m, ExecMode::kVN, 2, 4.0 * MB);
  EXPECT_NEAR(two.per_pair_bw, one.per_pair_bw / 2.0,
              0.15 * one.per_pair_bw);
}

TEST(HpccBiBw, Xt4LargeMessageAdvantage) {
  const auto xt3 = bidirectional_bandwidth(machine::xt3_dual_core(),
                                           ExecMode::kVN, 1, 4.0 * MB);
  const auto xt4 =
      bidirectional_bandwidth(machine::xt4(), ExecMode::kVN, 1, 4.0 * MB);
  // "at least 1.8 times that of the dual-core XT3" for large messages.
  EXPECT_GT(xt4.per_pair_bw, 1.6 * xt3.per_pair_bw);
}

TEST(HpccBiBw, TwoPairLatencyOverTwiceSinglePair) {
  const auto& m = machine::xt4();
  const auto one = bidirectional_bandwidth(m, ExecMode::kVN, 1, 8.0);
  const auto two = bidirectional_bandwidth(m, ExecMode::kVN, 2, 8.0);
  EXPECT_GT(two.one_way_time, 1.5 * one.one_way_time);
}

TEST(HpccBiBw, ValidatesArguments) {
  EXPECT_THROW(
      bidirectional_bandwidth(machine::xt4(), ExecMode::kSN, 2, 1024.0),
      UsageError);
  EXPECT_THROW(
      bidirectional_bandwidth(machine::xt4(), ExecMode::kVN, 3, 1024.0),
      UsageError);
}

}  // namespace
}  // namespace xts::hpcc
